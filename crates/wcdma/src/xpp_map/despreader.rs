//! The rake despreader on the array (paper Fig. 6).
//!
//! Two variants:
//!
//! * [`despreader_single_netlist`] — one finger: OVSF chips from a circular
//!   preloaded FIFO, complex multiply, accumulate-and-dump controlled by a
//!   chip counter/comparator, `>> log2(SF)` normalisation.
//! * [`despreader_multiplexed_netlist`] — the paper's headline design: a
//!   *single physical finger* time-multiplexed over `F` virtual fingers.
//!   Per-finger partial sums live in RAM-PAEs ("16 Loc. RAM" in Fig. 6):
//!   a read counter addresses the finger's partial sum, an ALU adds the new
//!   chip, a comparator-driven demux either recirculates the sum into the
//!   RAM or dumps it to the output while a merge writes back zero.

use crate::ovsf::ovsf;
use crate::xpp_map::{split_iq, zip_iq};
use sdr_dsp::Cplx;
use xpp_array::{
    AluOp, Array, ConfigId, CounterCfg, Netlist, NetlistBuilder, Result, UnaryOp, Word,
};

/// Minimum finger count for the multiplexed despreader: the RAM
/// read→add→write-back loop is four pipeline stages deep, so a partial sum
/// must not be re-read before it has been written back — exactly the
/// multiplexing-depth constraint a hardware designer faces on the XPP.
pub const MIN_MULTIPLEXED_FINGERS: usize = 6;

/// Builds the single-finger despreader netlist for `C(sf, code_index)`.
///
/// External ports: `i_in`/`q_in` (descrambled chips) → `i_out`/`q_out`
/// (one symbol per `sf` chips, normalised by `>> log2(sf)`).
///
/// # Panics
///
/// Panics on invalid OVSF parameters.
pub fn despreader_single_netlist(sf: usize, code_index: usize) -> Netlist {
    let code = ovsf(sf, code_index);
    let shift = sf.trailing_zeros();
    let mut nl = NetlistBuilder::new(format!("fig6-despreader-sf{sf}"));
    let i_in = nl.input("i_in");
    let q_in = nl.input("q_in");
    // OVSF chips recirculate from a preloaded lookup FIFO.
    let lut = nl.ring_fifo(code.iter().map(|&c| Word::new(c)).collect());
    let pi = nl.alu(AluOp::Mul, i_in, lut);
    let pq = nl.alu(AluOp::Mul, q_in, lut);
    // Dump event when the chip counter reaches sf−1.
    let ctr = nl.counter(CounterCfg::modulo(sf as u64));
    let last = nl.unary(UnaryOp::EqK(Word::new(sf as i32 - 1)), ctr.value);
    let dump = nl.to_event(last);
    let sum_i = nl.accum_dump(pi, dump);
    let sum_q = nl.accum_dump(pq, dump);
    let out_i = nl.unary(UnaryOp::ShrK(shift), sum_i);
    let out_q = nl.unary(UnaryOp::ShrK(shift), sum_q);
    nl.output("i_out", out_i);
    nl.output("q_out", out_q);
    nl.build()
        .expect("single despreader netlist is well formed")
}

/// Builds the time-multiplexed despreader netlist: `fingers` virtual fingers
/// share one physical datapath, with per-finger partial sums in RAM.
///
/// External ports: `i_in`/`q_in` (descrambled chips, finger-major
/// interleaved: chip 0 of fingers 0..F, then chip 1 of fingers 0..F, …) and
/// `code` (the OVSF chip for each token, from the dedicated-hardware
/// generator) → `i_out`/`q_out` (symbols, finger-major interleaved).
///
/// # Panics
///
/// Panics if `fingers < MIN_MULTIPLEXED_FINGERS`, `fingers > 256` (two
/// banks must fit one RAM-PAE address space), or OVSF parameters are
/// invalid.
pub fn despreader_multiplexed_netlist(fingers: usize, sf: usize) -> Netlist {
    assert!(
        (MIN_MULTIPLEXED_FINGERS..=256).contains(&fingers),
        "fingers must be in {MIN_MULTIPLEXED_FINGERS}..=256"
    );
    assert!(
        sf.is_power_of_two() && (4..=512).contains(&sf),
        "invalid SF {sf}"
    );
    let shift = sf.trailing_zeros();
    let period = (sf * fingers) as u64;
    let dump_from = (fingers * (sf - 1)) as i32;

    let mut nl = NetlistBuilder::new(format!("fig6-despreader-{fingers}x-sf{sf}"));
    let i_in = nl.input("i_in");
    let q_in = nl.input("q_in");
    let code = nl.input("code");

    let pi = nl.alu(AluOp::Mul, i_in, code);
    let pq = nl.alu(AluOp::Mul, q_in, code);

    // Dump control: true for the last F tokens of each symbol period.
    let g_ctr = nl.counter(CounterCfg::modulo(period));
    let last = nl.unary(UnaryOp::GeK(Word::new(dump_from)), g_ctr.value);
    let dump = nl.to_event(last);

    // Shared read/write address counters (fan out to both component RAMs).
    let rd_ctr = nl.counter(CounterCfg::modulo(fingers as u64));
    let wr_ctr = nl.counter(CounterCfg::modulo(fingers as u64));
    let zero = nl.constant(Word::ZERO);

    let mut outs = Vec::new();
    for p in [pi, pq] {
        let ram = nl.ram(vec![]);
        nl.wire(rd_ctr.value, ram.rd_addr);
        let sum = nl.alu(AluOp::Add, ram.rd_data, p);
        // The merge consumes its selector one pipeline stage after the demux
        // (it waits for the demux's "keep" output), so the shared dump-event
        // fan-out needs extra forward registers; with plain depth-2 channels
        // the skew locks the whole pipeline to 2/3 of a token per cycle.
        nl.set_default_capacity(4);
        let (keep, out) = nl.demux(dump, sum);
        let wr_val = nl.merge(dump, keep, zero);
        nl.set_default_capacity(xpp_array::DEFAULT_CHANNEL_CAPACITY);
        nl.wire(wr_ctr.value, ram.wr_addr);
        nl.wire(wr_val, ram.wr_data);
        outs.push(nl.unary(UnaryOp::ShrK(shift), out));
    }
    nl.output("i_out", outs[0]);
    nl.output("q_out", outs[1]);
    nl.build()
        .expect("multiplexed despreader netlist is well formed")
}

/// A single-finger despreader on its own array.
#[derive(Debug)]
pub struct ArrayDespreader {
    array: Array,
    cfg: ConfigId,
    sf: usize,
}

impl ArrayDespreader {
    /// Instantiates the despreader for `C(sf, code_index)`.
    ///
    /// # Errors
    ///
    /// Returns an error if placement fails.
    pub fn new(sf: usize, code_index: usize) -> Result<Self> {
        let mut array = Array::xpp64a();
        let cfg = array.configure(&despreader_single_netlist(sf, code_index))?;
        Ok(ArrayDespreader { array, cfg, sf })
    }

    /// Despreads a descrambled chip stream (same contract as the golden
    /// [`despread`](crate::rake::finger::despread); trailing partial symbols
    /// are dropped).
    ///
    /// # Errors
    ///
    /// Returns an error if the simulation stalls.
    pub fn process(&mut self, chips: &[Cplx<i32>]) -> Result<Vec<Cplx<i32>>> {
        let n_sym = chips.len() / self.sf;
        let (i, q) = split_iq(&chips[..n_sym * self.sf]);
        self.array.push_input(self.cfg, "i_in", i)?;
        self.array.push_input(self.cfg, "q_in", q)?;
        let budget = 16 * chips.len() as u64 + 2_000;
        self.array
            .run_until_output(self.cfg, "i_out", n_sym, budget)?;
        self.array.run_until_idle(2_000)?;
        let i_out = self.array.drain_output(self.cfg, "i_out")?;
        let q_out = self.array.drain_output(self.cfg, "q_out")?;
        Ok(zip_iq(&i_out, &q_out))
    }

    /// The underlying array.
    pub fn array(&self) -> &Array {
        &self.array
    }

    /// The configuration handle.
    pub fn config(&self) -> ConfigId {
        self.cfg
    }
}

/// The paper's time-multiplexed single physical finger on its own array.
#[derive(Debug)]
pub struct ArrayMultiplexedDespreader {
    array: Array,
    cfg: ConfigId,
    fingers: usize,
    sf: usize,
    code: Vec<i32>,
}

impl ArrayMultiplexedDespreader {
    /// Instantiates the multiplexed despreader.
    ///
    /// # Errors
    ///
    /// Returns an error if placement fails.
    ///
    /// # Panics
    ///
    /// Panics on invalid finger/SF/OVSF parameters.
    pub fn new(fingers: usize, sf: usize, code_index: usize) -> Result<Self> {
        let mut array = Array::xpp64a();
        let cfg = array.configure(&despreader_multiplexed_netlist(fingers, sf))?;
        Ok(ArrayMultiplexedDespreader {
            array,
            cfg,
            fingers,
            sf,
            code: ovsf(sf, code_index),
        })
    }

    /// Number of virtual fingers.
    pub fn fingers(&self) -> usize {
        self.fingers
    }

    /// Despreads per-finger chip streams. `streams[f]` holds finger `f`'s
    /// descrambled chips; all fingers must supply the same whole number of
    /// symbols. Returns per-finger symbol streams.
    ///
    /// # Errors
    ///
    /// Returns an error if the simulation stalls.
    ///
    /// # Panics
    ///
    /// Panics if the stream count differs from the finger count or lengths
    /// are unequal.
    pub fn process(&mut self, streams: &[Vec<Cplx<i32>>]) -> Result<Vec<Vec<Cplx<i32>>>> {
        assert_eq!(
            streams.len(),
            self.fingers,
            "one stream per finger required"
        );
        let len = streams[0].len();
        assert!(
            streams.iter().all(|s| s.len() == len),
            "finger streams must align"
        );
        let n_sym = len / self.sf;
        let n_chips = n_sym * self.sf;

        // Finger-major interleave, with the OVSF chip repeated per finger —
        // the streams the dedicated hardware would deliver.
        let total = n_chips * self.fingers;
        let mut i_stream = Vec::with_capacity(total);
        let mut q_stream = Vec::with_capacity(total);
        let mut code_stream = Vec::with_capacity(total);
        for c in 0..n_chips {
            let chip_code = Word::new(self.code[c % self.sf]);
            for s in streams {
                i_stream.push(Word::new(s[c].re));
                q_stream.push(Word::new(s[c].im));
                code_stream.push(chip_code);
            }
        }
        self.array.push_input(self.cfg, "i_in", i_stream)?;
        self.array.push_input(self.cfg, "q_in", q_stream)?;
        self.array.push_input(self.cfg, "code", code_stream)?;
        let expect = n_sym * self.fingers;
        let budget = 16 * total as u64 + 4_000;
        self.array
            .run_until_output(self.cfg, "i_out", expect, budget)?;
        self.array.run_until_idle(4_000)?;
        let i_out = self.array.drain_output(self.cfg, "i_out")?;
        let q_out = self.array.drain_output(self.cfg, "q_out")?;
        let muxed = zip_iq(&i_out, &q_out);
        // De-interleave back to per-finger symbol streams.
        let mut out = vec![Vec::with_capacity(n_sym); self.fingers];
        for (k, sym) in muxed.into_iter().enumerate() {
            out[k % self.fingers].push(sym);
        }
        Ok(out)
    }

    /// The underlying array.
    pub fn array(&self) -> &Array {
        &self.array
    }

    /// The configuration handle.
    pub fn config(&self) -> ConfigId {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rake::finger::despread;

    fn chips(n: usize, seed: i32) -> Vec<Cplx<i32>> {
        (0..n as i32)
            .map(|i| {
                Cplx::new(
                    ((i * 131 + seed * 7) % 8191) - 4095,
                    ((i * 57 + seed * 13) % 8191) - 4095,
                )
            })
            .collect()
    }

    #[test]
    fn single_finger_matches_golden_for_common_sfs() {
        for &(sf, k) in &[(4usize, 1usize), (16, 7), (64, 33), (256, 100)] {
            let data = chips(sf * 5, sf as i32);
            let mut hw = ArrayDespreader::new(sf, k).unwrap();
            let out = hw.process(&data).unwrap();
            let golden = despread(&data, sf, k);
            assert_eq!(out, golden, "sf={sf} k={k}");
        }
    }

    #[test]
    fn single_finger_drops_partial_symbols() {
        let sf = 8;
        let data = chips(sf * 3 + 5, 1);
        let mut hw = ArrayDespreader::new(sf, 2).unwrap();
        let out = hw.process(&data).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn multiplexed_matches_golden_per_finger() {
        let fingers = 6;
        let sf = 16;
        let k = 3;
        let streams: Vec<Vec<Cplx<i32>>> = (0..fingers).map(|f| chips(sf * 4, f as i32)).collect();
        let mut hw = ArrayMultiplexedDespreader::new(fingers, sf, k).unwrap();
        let out = hw.process(&streams).unwrap();
        for (f, stream) in streams.iter().enumerate() {
            assert_eq!(out[f], despread(stream, sf, k), "finger {f}");
        }
    }

    #[test]
    fn eighteen_finger_headline_scenario() {
        // The paper's 6 basestations × 3 multipaths case.
        let fingers = 18;
        let sf = 64;
        let k = 17;
        let streams: Vec<Vec<Cplx<i32>>> = (0..fingers)
            .map(|f| chips(sf * 2, f as i32 * 3 + 1))
            .collect();
        let mut hw = ArrayMultiplexedDespreader::new(fingers, sf, k).unwrap();
        let out = hw.process(&streams).unwrap();
        for (f, stream) in streams.iter().enumerate() {
            assert_eq!(out[f], despread(stream, sf, k), "finger {f}");
        }
        // One physical finger: a single pair of RAMs and a handful of PAEs.
        let p = hw.array().placement(hw.config()).unwrap();
        assert_eq!(p.counts.ram, 2);
        assert!(
            p.counts.alu <= 8,
            "physical finger should be small: {:?}",
            p.counts
        );
    }

    #[test]
    #[should_panic]
    fn multiplexed_rejects_too_few_fingers() {
        despreader_multiplexed_netlist(2, 16);
    }

    #[test]
    fn multiplexed_throughput_is_one_chip_per_cycle() {
        let fingers = 8;
        let sf = 32;
        let streams: Vec<Vec<Cplx<i32>>> = (0..fingers).map(|f| chips(sf * 8, f as i32)).collect();
        let mut hw = ArrayMultiplexedDespreader::new(fingers, sf, 5).unwrap();
        let before = hw.array().stats().cycles;
        hw.process(&streams).unwrap();
        let cycles = hw.array().stats().cycles - before;
        let tokens = (fingers * sf * 8) as u64;
        assert!(
            cycles < tokens + 400,
            "multiplexed despreader too slow: {cycles} cycles for {tokens} tokens"
        );
    }
}
