//! The paper's hardware/software partitioning (Figs. 4 and 8).
//!
//! "Dataflow oriented tasks that operate on a word-level granular data
//! stream are executed using the reconfigurable hardware. A DSP is used to
//! execute the control-flow and synchronization tasks. Bit-level data
//! processing tasks that execute continuously are mapped onto dedicated
//! hardware resources."

use std::fmt;

/// The three resource classes of the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The DSP / microcontroller.
    Dsp,
    /// Fixed-function dedicated hardware.
    Dedicated,
    /// The reconfigurable processing array.
    Array,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Resource::Dsp => "DSP",
            Resource::Dedicated => "dedicated HW",
            Resource::Array => "reconfigurable array",
        };
        write!(f, "{s}")
    }
}

/// One task of a receiver's processing graph with its assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskAssignment {
    /// Task name (matching the figures' block labels).
    pub task: &'static str,
    /// Where the paper maps it.
    pub resource: Resource,
    /// The module in this repository that implements it.
    pub implemented_by: &'static str,
}

/// The rake receiver partitioning of Fig. 4.
pub fn rake_partitioning() -> Vec<TaskAssignment> {
    use Resource::*;
    vec![
        TaskAssignment {
            task: "de-scrambling",
            resource: Array,
            implemented_by: "sdr_wcdma::xpp_map::descrambler",
        },
        TaskAssignment {
            task: "de-spreading",
            resource: Array,
            implemented_by: "sdr_wcdma::xpp_map::despreader",
        },
        TaskAssignment {
            task: "channel correction",
            resource: Array,
            implemented_by: "sdr_wcdma::xpp_map::corrector",
        },
        TaskAssignment {
            task: "combining",
            resource: Array,
            implemented_by: "sdr_wcdma::rake::combiner",
        },
        TaskAssignment {
            task: "scrambling code generation",
            resource: Dedicated,
            implemented_by: "sdr_wcdma::scrambling",
        },
        TaskAssignment {
            task: "spreading code generation",
            resource: Dedicated,
            implemented_by: "sdr_wcdma::ovsf",
        },
        TaskAssignment {
            task: "control & synchronization",
            resource: Dsp,
            implemented_by: "sdr_wcdma::rake",
        },
        TaskAssignment {
            task: "pilot acquisition",
            resource: Dsp,
            implemented_by: "sdr_wcdma::rake::searcher",
        },
        TaskAssignment {
            task: "path tracking",
            resource: Dsp,
            implemented_by: "sdr_wcdma::rake::tracker",
        },
        TaskAssignment {
            task: "channel estimation",
            resource: Dsp,
            implemented_by: "sdr_wcdma::rake::estimator",
        },
    ]
}

/// The OFDM decoder partitioning of Fig. 8.
pub fn ofdm_partitioning() -> Vec<TaskAssignment> {
    use Resource::*;
    vec![
        TaskAssignment {
            task: "RF receiver, A/D",
            resource: Dedicated,
            implemented_by: "sdr_ofdm::channel (simulated front end)",
        },
        TaskAssignment {
            task: "down sampling",
            resource: Array,
            implemented_by: "sdr_ofdm::xpp_map::frontend (config 1)",
        },
        TaskAssignment {
            task: "framing and sync",
            resource: Dedicated,
            implemented_by: "sdr_ofdm::rx (timing) + dedicated framing",
        },
        TaskAssignment {
            task: "preamble detection",
            resource: Array,
            implemented_by: "sdr_ofdm::xpp_map::frontend (config 2a)",
        },
        TaskAssignment {
            task: "FFT",
            resource: Array,
            implemented_by: "sdr_ofdm::xpp_map::fft64 (config 1)",
        },
        TaskAssignment {
            task: "demodulation",
            resource: Array,
            implemented_by: "sdr_ofdm::xpp_map::frontend (config 2b)",
        },
        TaskAssignment {
            task: "descrambler",
            resource: Dsp,
            implemented_by: "sdr_ofdm::scrambler (bit-level; see DESIGN.md)",
        },
        TaskAssignment {
            task: "Viterbi",
            resource: Dedicated,
            implemented_by: "sdr_ofdm::convolutional::viterbi_decode",
        },
        TaskAssignment {
            task: "layer 2",
            resource: Dsp,
            implemented_by: "out of scope (protocol stack)",
        },
    ]
}

/// Counts tasks per resource (for the report generator).
pub fn count_by_resource(tasks: &[TaskAssignment]) -> (usize, usize, usize) {
    let dsp = tasks.iter().filter(|t| t.resource == Resource::Dsp).count();
    let ded = tasks
        .iter()
        .filter(|t| t.resource == Resource::Dedicated)
        .count();
    let arr = tasks
        .iter()
        .filter(|t| t.resource == Resource::Array)
        .count();
    (dsp, ded, arr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rake_partitioning_matches_fig4() {
        let tasks = rake_partitioning();
        let (dsp, ded, arr) = count_by_resource(&tasks);
        assert_eq!(arr, 4); // descramble, despread, correct, combine
        assert_eq!(ded, 2); // the two code generators
        assert_eq!(dsp, 4); // control/sync, acquisition, tracking, estimation
    }

    #[test]
    fn ofdm_partitioning_covers_fig8_blocks() {
        let tasks = ofdm_partitioning();
        for block in [
            "down sampling",
            "FFT",
            "demodulation",
            "Viterbi",
            "preamble detection",
        ] {
            assert!(tasks.iter().any(|t| t.task == block), "missing {block}");
        }
        // The streaming kernels sit on the array; Viterbi is dedicated.
        let viterbi = tasks.iter().find(|t| t.task == "Viterbi").unwrap();
        assert_eq!(viterbi.resource, Resource::Dedicated);
        let fft = tasks.iter().find(|t| t.task == "FFT").unwrap();
        assert_eq!(fft.resource, Resource::Array);
    }

    #[test]
    fn every_task_names_an_implementation() {
        for t in rake_partitioning().iter().chain(&ofdm_partitioning()) {
            assert!(!t.implemented_by.is_empty());
        }
    }

    #[test]
    fn resource_display() {
        assert_eq!(Resource::Dsp.to_string(), "DSP");
        assert_eq!(Resource::Array.to_string(), "reconfigurable array");
    }
}
