//! The compile-time half of the configuration path.
//!
//! [`Array::configure`](crate::Array::configure) used to do everything at
//! once: compute the placement footprint, resolve every port of every node
//! into channel endpoints (through per-call `HashMap`s), and stream the
//! result over the configuration bus. The first two steps depend only on
//! the netlist, never on the array the configuration lands on — so a
//! [`CompiledConfig`] captures them once, and
//! [`Array::configure_compiled`](crate::Array::configure_compiled) pays
//! only the load. A configuration manager can therefore compile a netlist
//! a single time and share the result (behind an `Arc`) across every array
//! in a worker pool, the way the XPP tool flow compiles NML source once
//! and downloads the binary configuration to any number of devices.

use std::collections::HashMap;

use crate::array::CONFIG_CYCLES_PER_OBJECT;
use crate::netlist::{EdgeSpec, EvEdgeSpec, Netlist};
use crate::object::ObjectKind;
use crate::place::Placement;

/// Direction of a named external port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PortDir {
    DataIn,
    DataOut,
    EvIn,
    EvOut,
}

/// One node of a compiled configuration: its behaviour plus flattened
/// port→channel maps in *netlist-local* channel numbering (index into the
/// configuration's own edge lists). `configure_compiled` translates local
/// indices into array channel slots with one `Vec` lookup per port — the
/// per-configure `HashMap` construction the compiler replaced.
#[derive(Debug, Clone)]
pub(crate) struct CompiledNode {
    pub(crate) kind: ObjectKind,
    pub(crate) label: String,
    pub(crate) din: [Option<u32>; 3],
    pub(crate) dout: [Vec<u32>; 2],
    pub(crate) evin: [Option<u32>; 2],
    pub(crate) evout: [Vec<u32>; 1],
}

/// A netlist compiled down to everything an [`Array`](crate::Array) needs
/// at load time: the placement footprint, the channel templates, and the
/// flattened per-node port maps.
///
/// Compiling is the expensive, array-independent half of configuration;
/// loading a `CompiledConfig` onto an array only allocates resources and
/// streams the serial configuration bus. Compile once, load anywhere —
/// including concurrently on many arrays via `Arc<CompiledConfig>`.
///
/// # Example
///
/// ```
/// use xpp_array::{AluOp, Array, CompiledConfig, NetlistBuilder, Word};
///
/// # fn main() -> Result<(), xpp_array::Error> {
/// let mut nl = NetlistBuilder::new("inc");
/// let a = nl.input("a");
/// let k = nl.constant(Word::new(1));
/// let y = nl.alu(AluOp::Add, a, k);
/// nl.output("y", y);
/// let compiled = CompiledConfig::compile(&nl.build()?);
///
/// // The same compiled configuration loads onto any number of arrays.
/// for _ in 0..2 {
///     let mut array = Array::xpp64a();
///     let cfg = array.configure_compiled(&compiled)?;
///     array.push_input(cfg, "a", [Word::new(41)])?;
///     array.run_until_idle(1_000)?;
///     assert_eq!(array.drain_output(cfg, "y")?, vec![Word::new(42)]);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledConfig {
    pub(crate) name: String,
    pub(crate) placement: Placement,
    pub(crate) load_cycles: u64,
    pub(crate) d_edges: Vec<EdgeSpec>,
    pub(crate) e_edges: Vec<EvEdgeSpec>,
    pub(crate) nodes: Vec<CompiledNode>,
    pub(crate) ports: Vec<(String, usize, PortDir)>,
}

impl CompiledConfig {
    /// Compiles a netlist: computes its placement footprint and resolves
    /// every port into local channel indices.
    pub fn compile(netlist: &Netlist) -> Self {
        let placement = Placement::of(netlist);

        // Port → local-channel maps, built once here instead of on every
        // Array::configure call.
        let mut d_map: HashMap<(usize, usize), Vec<u32>> = HashMap::new();
        let mut d_in: HashMap<(usize, usize), u32> = HashMap::new();
        for (k, e) in netlist.data_edges.iter().enumerate() {
            d_map.entry(e.from).or_default().push(k as u32);
            d_in.insert(e.to, k as u32);
        }
        let mut e_map: HashMap<(usize, usize), Vec<u32>> = HashMap::new();
        let mut e_in: HashMap<(usize, usize), u32> = HashMap::new();
        for (k, e) in netlist.ev_edges.iter().enumerate() {
            e_map.entry(e.from).or_default().push(k as u32);
            e_in.insert(e.to, k as u32);
        }

        let mut nodes = Vec::with_capacity(netlist.nodes.len());
        let mut ports = Vec::new();
        for (n, spec) in netlist.nodes.iter().enumerate() {
            let shape = spec.kind.shape();
            let mut din = [None; 3];
            for (p, slot) in din.iter_mut().enumerate().take(shape.din) {
                *slot = d_in.get(&(n, p)).copied();
            }
            let mut dout: [Vec<u32>; 2] = Default::default();
            for (p, list) in dout.iter_mut().enumerate().take(shape.dout) {
                *list = d_map.get(&(n, p)).cloned().unwrap_or_default();
            }
            let mut evin = [None; 2];
            for (p, slot) in evin.iter_mut().enumerate().take(shape.evin) {
                *slot = e_in.get(&(n, p)).copied();
            }
            let mut evout: [Vec<u32>; 1] = Default::default();
            for (p, list) in evout.iter_mut().enumerate().take(shape.evout) {
                *list = e_map.get(&(n, p)).cloned().unwrap_or_default();
            }
            match &spec.kind {
                ObjectKind::Input(name) => ports.push((name.clone(), n, PortDir::DataIn)),
                ObjectKind::Output(name) => ports.push((name.clone(), n, PortDir::DataOut)),
                ObjectKind::InputEvent(name) => ports.push((name.clone(), n, PortDir::EvIn)),
                ObjectKind::OutputEvent(name) => ports.push((name.clone(), n, PortDir::EvOut)),
                _ => {}
            }
            nodes.push(CompiledNode {
                kind: spec.kind.clone(),
                label: spec.label.clone(),
                din,
                dout,
                evin,
                evout,
            });
        }

        CompiledConfig {
            name: netlist.name().to_string(),
            placement,
            load_cycles: netlist.object_count() as u64 * CONFIG_CYCLES_PER_OBJECT,
            d_edges: netlist.data_edges.clone(),
            e_edges: netlist.ev_edges.clone(),
            nodes,
            ports,
        }
    }

    /// The configuration name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The precomputed placement footprint.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.nodes.len()
    }

    /// Serial configuration-bus cycles a load of this configuration costs.
    pub fn load_cycles(&self) -> u64 {
        self.load_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;
    use crate::object::AluOp;

    fn pipeline() -> Netlist {
        let mut nl = NetlistBuilder::new("p");
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.alu(AluOp::Add, a, b);
        nl.output("y", y);
        nl.build().unwrap()
    }

    #[test]
    fn compile_captures_footprint_and_ports() {
        let nl = pipeline();
        let c = CompiledConfig::compile(&nl);
        assert_eq!(c.name(), "p");
        assert_eq!(c.object_count(), nl.object_count());
        assert_eq!(c.load_cycles(), nl.object_count() as u64 * 3);
        assert_eq!(c.placement().counts, Placement::of(&nl).counts);
        assert_eq!(c.ports.len(), 3, "a, b, y");
        // The ALU node reads both data edges and drives the output edge.
        let alu = c
            .nodes
            .iter()
            .find(|n| matches!(n.kind, ObjectKind::Alu(_)))
            .unwrap();
        assert!(alu.din[0].is_some() && alu.din[1].is_some());
        assert_eq!(alu.dout[0].len(), 1);
    }
}
